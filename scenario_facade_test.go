package tireplay_test

// Facade-level coverage of the Scenario/Runner surface: the same sweep
// expressed declaratively must reproduce the one-shot Replay calls exactly,
// including through the compat shim.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tireplay"
)

func facadePlatformSpec(procs int) *tireplay.PlatformSpec {
	return &tireplay.PlatformSpec{
		Name: "t", Topology: "flat", Hosts: procs, Speed: 2e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	}
}

func TestFacadeScenarioMatchesReplayShim(t *testing.T) {
	// Old API: one-shot Replay.
	lu, err := tireplay.NewLU(tireplay.ClassA, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
		Name: "t", Hosts: 8, Speed: 2e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	old, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat, tireplay.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// New API: the same replay declared as a scenario.
	s := &tireplay.Scenario{
		Platform: facadePlatformSpec(8),
		Workload: &tireplay.WorkloadSpec{Benchmark: "lu", Class: "A", Procs: 8, Iterations: 3},
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime != old.SimulatedTime {
		t.Fatalf("scenario %v != shim %v", res.SimulatedTime, old.SimulatedTime)
	}
	if res.Actions != old.Actions {
		t.Fatalf("scenario actions %d != shim %d", res.Actions, old.Actions)
	}
}

func TestFacadeBatchSweep(t *testing.T) {
	// The acceptance-criteria sweep at facade level: >= 8 LU/CG scenarios,
	// 4 workers, byte-identical per-scenario times vs sequential Replay.
	type inst struct {
		bench string
		class string
		procs int
	}
	var insts []inst
	for _, bench := range []string{"lu", "cg"} {
		for _, class := range []string{"S", "A"} {
			for _, procs := range []int{4, 8} {
				insts = append(insts, inst{bench, class, procs})
			}
		}
	}
	if len(insts) < 8 {
		t.Fatalf("only %d instances", len(insts))
	}

	var scenarios []*tireplay.Scenario
	for _, in := range insts {
		scenarios = append(scenarios, &tireplay.Scenario{
			Name:     fmt.Sprintf("%s-%s-%d", in.bench, in.class, in.procs),
			Platform: facadePlatformSpec(in.procs),
			Workload: &tireplay.WorkloadSpec{
				Benchmark: in.bench, Class: in.class, Procs: in.procs, Iterations: 2,
			},
		})
	}

	results, err := tireplay.RunScenarios(context.Background(), scenarios, tireplay.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", scenarios[i].Name, r.Err)
		}
		// Sequential reference through the compat shim.
		in := insts[i]
		var w tireplay.Workload
		var werr error
		class := tireplay.NPBClass(in.class[0])
		if in.bench == "lu" {
			w, werr = tireplay.NewLU(class, in.procs, 2)
		} else {
			w, werr = tireplay.NewCG(class, in.procs, 2)
		}
		if werr != nil {
			t.Fatal(werr)
		}
		plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
			Name: "t", Hosts: in.procs, Speed: 2e9,
			LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
			BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := tireplay.Replay(tireplay.PerfectTrace(w), plat, tireplay.ReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Replay.SimulatedTime != ref.SimulatedTime {
			t.Fatalf("%s: batch %v != sequential %v",
				scenarios[i].Name, r.Replay.SimulatedTime, ref.SimulatedTime)
		}
	}
}

// TestFacadeSweep drives the exported sweep surface end to end: declare a
// grid, stream it with a JSONL sink and a store, then resume it.
func TestFacadeSweep(t *testing.T) {
	dir := t.TempDir()
	sw := &tireplay.Sweep{
		Name: "facade",
		Base: tireplay.Scenario{
			Platform: facadePlatformSpec(8),
			Workload: &tireplay.WorkloadSpec{Benchmark: "cg", Class: "S", Procs: 4, Iterations: 2},
		},
		NameFormat: "cg-{procs}p-{backend}",
		Axes: []tireplay.SweepAxis{
			{Name: "procs", Values: []any{
				map[string]any{"workload.procs": 4, "platform.hosts": 4},
				map[string]any{"workload.procs": 8, "platform.hosts": 8},
			}, Labels: []string{"4", "8"}},
			{Name: "backend", Values: []any{"smpi", "msg"}},
		},
		Store: filepath.Join(dir, "results"),
	}

	jsonl, err := os.Create(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []tireplay.SweepResult
	for r, err := range tireplay.RunSweep(context.Background(), sw,
		tireplay.WithSweepWorkers(2), tireplay.WithSink(tireplay.NewJSONLSink(jsonl))) {
		if err != nil {
			t.Fatal(err)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Point.Scenario.Name, r.Err)
		}
		streamed = append(streamed, r)
	}
	jsonl.Close()
	if len(streamed) != 4 {
		t.Fatalf("streamed %d results, want 4", len(streamed))
	}

	f, err := os.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := tireplay.ReadSweepRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("JSONL has %d records, want 4", len(recs))
	}

	// A resumed run serves everything from the store, bit-identical.
	results, err := tireplay.CollectSweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	bySim := make(map[string]float64)
	for _, r := range streamed {
		bySim[r.Point.Fingerprint] = r.Replay.SimulatedTime
	}
	for _, r := range results {
		if !r.Cached {
			t.Fatalf("%s: not served from the store", r.Point.Scenario.Name)
		}
		if want := bySim[r.Point.Fingerprint]; r.Replay.SimulatedTime != want {
			t.Fatalf("%s: resumed %v != streamed %v", r.Point.Scenario.Name, r.Replay.SimulatedTime, want)
		}
	}

	// The fingerprint helper agrees with the points' identities.
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := tireplay.ScenarioFingerprint(pts[0].Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if fp != pts[0].Fingerprint {
		t.Fatalf("fingerprint mismatch: %s != %s", fp, pts[0].Fingerprint)
	}
}

func TestFacadeTraceErrorSurface(t *testing.T) {
	// A malformed trace (an orphan wait) surfaces the structured error
	// types re-exported by the facade.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad_0.trace"), []byte("p0 wait\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.desc"), []byte("bad_0.trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prov, err := tireplay.LoadTraces(filepath.Join(dir, "bad.desc"), 1)
	if err != nil {
		t.Fatal(err)
	}
	plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
		Name: "t", Hosts: 1, Speed: 1e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = tireplay.Replay(prov, plat, tireplay.ReplayConfig{}); err == nil {
		t.Fatal("malformed trace accepted")
	}
	if !errors.Is(err, tireplay.ErrNoOutstandingRequest) {
		t.Fatalf("error %v does not wrap ErrNoOutstandingRequest", err)
	}
	var te *tireplay.TraceError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a *TraceError", err)
	}
}

func TestFacadeBackendsRegistry(t *testing.T) {
	names := tireplay.Backends()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found[tireplay.SMPI] || !found[tireplay.MSG] {
		t.Fatalf("builtin backends missing from registry: %v", names)
	}
}
