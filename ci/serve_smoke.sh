#!/usr/bin/env bash
# End-to-end smoke test of the sweep service: start `tireplay serve`
# with no embedded workers, drain a small LU grid with two external
# `tireplay work` processes, and prove the streamed results are
# bit-identical (fingerprint -> simulated time) to a plain local run.
# A second phase SIGKILLs a worker AND the server mid-sweep, restarts
# the server on the same store+journal, and proves the client's stream
# resumes to the same bit-identical record set.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/tireplay" ./cmd/tireplay
go build -o "$workdir/sweepdiff" ./cmd/sweepdiff

cat > "$workdir/grid.json" <<'EOF'
{
  "name": "smoke",
  "base": {
    "platform": {"name": "smoke", "topology": "flat", "hosts": 8, "speed": 1e9,
                 "link_bandwidth": 1.25e8, "link_latency": 2e-5,
                 "backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6},
    "workload": {"benchmark": "lu", "class": "S", "procs": 2, "iterations": 1}
  },
  "name_format": "lu-{procs}p-i{iters}",
  "axes": [
    {"name": "procs", "values": [
       {"workload.procs": 2, "platform.hosts": 2},
       {"workload.procs": 4, "platform.hosts": 4},
       {"workload.procs": 8, "platform.hosts": 8}],
     "labels": ["2", "4", "8"]},
    {"name": "iters", "path": "workload.iterations", "values": [1, 2]}
  ]
}
EOF

echo "== local baseline"
"$workdir/tireplay" -sweep "$workdir/grid.json" -out "$workdir/want.jsonl"

echo "== serve (no embedded workers) + 2 external workers"
addr=127.0.0.1:9411
"$workdir/tireplay" serve -addr "$addr" -store "$workdir/store" -workers -1 -v &
"$workdir/tireplay" work -server "http://$addr" -poll 250ms -name w1 &
"$workdir/tireplay" work -server "http://$addr" -poll 250ms -name w2 &

echo "== client submit + stream"
"$workdir/tireplay" -sweep "$workdir/grid.json" -server "http://$addr" -out "$workdir/got.jsonl" -v

echo "== diff against baseline"
"$workdir/sweepdiff" "$workdir/want.jsonl" "$workdir/got.jsonl"

echo "== resubmit: everything must come from the server's store"
"$workdir/tireplay" -sweep "$workdir/grid.json" -server "http://$addr" -out "$workdir/again.jsonl" -v
"$workdir/sweepdiff" "$workdir/want.jsonl" "$workdir/again.jsonl"
if ! grep -q '"cached":true' "$workdir/again.jsonl"; then
  echo "resubmitted results were not served from the store" >&2
  exit 1
fi

echo "== crash phase: SIGKILL a worker and the server mid-sweep, restart, resume"
cat > "$workdir/grid2.json" <<'EOF'
{
  "name": "smoke-crash",
  "base": {
    "platform": {"name": "smoke", "topology": "flat", "hosts": 8, "speed": 1e9,
                 "link_bandwidth": 1.25e8, "link_latency": 2e-5,
                 "backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6},
    "workload": {"benchmark": "lu", "class": "S", "procs": 2, "iterations": 1}
  },
  "name_format": "lu-{procs}p-i{iters}",
  "axes": [
    {"name": "procs", "values": [
       {"workload.procs": 2, "platform.hosts": 2},
       {"workload.procs": 4, "platform.hosts": 4},
       {"workload.procs": 8, "platform.hosts": 8}],
     "labels": ["2", "4", "8"]},
    {"name": "iters", "path": "workload.iterations", "values": [40, 80, 120]}
  ]
}
EOF
"$workdir/tireplay" -sweep "$workdir/grid2.json" -out "$workdir/want2.jsonl"

addr2=127.0.0.1:9412
store2="$workdir/store2"
"$workdir/tireplay" serve -addr "$addr2" -store "$store2" -workers -1 -lease-ttl 2s -v &
serve_pid=$!
"$workdir/tireplay" work -server "http://$addr2" -poll 250ms -name doomed &
doomed_pid=$!

"$workdir/tireplay" -sweep "$workdir/grid2.json" -server "http://$addr2" \
  -out "$workdir/got2.jsonl" -v &
client_pid=$!

# Wait until the client has streamed a couple of records — the sweep is
# then provably mid-flight — and SIGKILL both the worker and the server.
for i in $(seq 1 200); do
  [ "$(wc -l < "$workdir/got2.jsonl" 2>/dev/null || echo 0)" -ge 2 ] && break
  sleep 0.05
done
kill -9 "$doomed_pid" 2>/dev/null || true
kill -9 "$serve_pid"  2>/dev/null || true

# Restart on the same address, store, and journal — this incarnation
# brings embedded workers to finish whatever the crash left pending.
sleep 0.5
"$workdir/tireplay" serve -addr "$addr2" -store "$store2" -workers 2 -lease-ttl 2s -v \
  2> "$workdir/serve2.log" &

if ! wait "$client_pid"; then
  echo "client stream did not survive the server restart" >&2
  cat "$workdir/serve2.log" >&2
  exit 1
fi
"$workdir/sweepdiff" "$workdir/want2.jsonl" "$workdir/got2.jsonl"
for i in $(seq 1 50); do
  grep -q "recovered sweep" "$workdir/serve2.log" 2>/dev/null && break
  if [ "$i" -eq 50 ]; then
    echo "restarted server did not recover the open sweep from its journal" >&2
    cat "$workdir/serve2.log" >&2
    exit 1
  fi
  sleep 0.2
done

echo "serve smoke: OK"
