#!/usr/bin/env bash
# End-to-end smoke test of the sweep service: start `tireplay serve`
# with no embedded workers, drain a small LU grid with two external
# `tireplay work` processes, and prove the streamed results are
# bit-identical (fingerprint -> simulated time) to a plain local run.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/tireplay" ./cmd/tireplay
go build -o "$workdir/sweepdiff" ./cmd/sweepdiff

cat > "$workdir/grid.json" <<'EOF'
{
  "name": "smoke",
  "base": {
    "platform": {"name": "smoke", "topology": "flat", "hosts": 8, "speed": 1e9,
                 "link_bandwidth": 1.25e8, "link_latency": 2e-5,
                 "backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6},
    "workload": {"benchmark": "lu", "class": "S", "procs": 2, "iterations": 1}
  },
  "name_format": "lu-{procs}p-i{iters}",
  "axes": [
    {"name": "procs", "values": [
       {"workload.procs": 2, "platform.hosts": 2},
       {"workload.procs": 4, "platform.hosts": 4},
       {"workload.procs": 8, "platform.hosts": 8}],
     "labels": ["2", "4", "8"]},
    {"name": "iters", "path": "workload.iterations", "values": [1, 2]}
  ]
}
EOF

echo "== local baseline"
"$workdir/tireplay" -sweep "$workdir/grid.json" -out "$workdir/want.jsonl"

echo "== serve (no embedded workers) + 2 external workers"
addr=127.0.0.1:9411
"$workdir/tireplay" serve -addr "$addr" -store "$workdir/store" -workers -1 -v &
"$workdir/tireplay" work -server "http://$addr" -poll 250ms -name w1 &
"$workdir/tireplay" work -server "http://$addr" -poll 250ms -name w2 &

echo "== client submit + stream"
"$workdir/tireplay" -sweep "$workdir/grid.json" -server "http://$addr" -out "$workdir/got.jsonl" -v

echo "== diff against baseline"
"$workdir/sweepdiff" "$workdir/want.jsonl" "$workdir/got.jsonl"

echo "== resubmit: everything must come from the server's store"
"$workdir/tireplay" -sweep "$workdir/grid.json" -server "http://$addr" -out "$workdir/again.jsonl" -v
"$workdir/sweepdiff" "$workdir/want.jsonl" "$workdir/again.jsonl"
if ! grep -q '"cached":true' "$workdir/again.jsonl"; then
  echo "resubmitted results were not served from the store" >&2
  exit 1
fi

echo "serve smoke: OK"
