// Command sweepdiff compares two JSONL sweep-result files (the JSONL
// sink's output, or a served result stream saved with -out) on the
// replay-identity mapping fingerprint → (simulated time, actions). Wall
// times, completion order, cached flags, and sweep names are ignored —
// they legitimately differ between runs — but a missing, extra, or
// numerically different record is an error.
//
//	sweepdiff want.jsonl got.jsonl
//
// Exit status 0 means the files agree bit for bit on every replay;
// 1 means they differ (differences are listed); 2 is a usage error.
// The CI smoke job uses this to prove the sweep service's distributed
// drain is bit-identical to a single-process run.
package main

import (
	"fmt"
	"os"

	"tireplay"
)

type identity struct {
	simulated float64
	actions   int64
	err       string
}

func load(path string) (map[string]identity, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := tireplay.ReadSweepRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]identity, len(recs))
	for _, rec := range recs {
		id := identity{err: rec.Err}
		if rec.Replay != nil {
			id.simulated = rec.Replay.SimulatedTime
			id.actions = rec.Replay.Actions
		}
		if prev, ok := out[rec.Fingerprint]; ok && prev != id {
			return nil, fmt.Errorf("%s: fingerprint %s appears with two different results", path, rec.Fingerprint)
		}
		out[rec.Fingerprint] = id
	}
	return out, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: sweepdiff want.jsonl got.jsonl")
		os.Exit(2)
	}
	want, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepdiff:", err)
		os.Exit(2)
	}
	got, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepdiff:", err)
		os.Exit(2)
	}

	bad := false
	for fp, w := range want {
		g, ok := got[fp]
		if !ok {
			fmt.Printf("missing: %s (want %.17g s)\n", fp, w.simulated)
			bad = true
			continue
		}
		if g != w {
			fmt.Printf("differs: %s want (%.17g s, %d actions, err %q) got (%.17g s, %d actions, err %q)\n",
				fp, w.simulated, w.actions, w.err, g.simulated, g.actions, g.err)
			bad = true
		}
	}
	for fp := range got {
		if _, ok := want[fp]; !ok {
			fmt.Printf("extra: %s\n", fp)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("sweepdiff: %d fingerprints, bit-identical\n", len(want))
}
