// Command tracegen generates time-independent traces for NPB workload
// instances, either distortion-free ("perfect", what coarse counters would
// record) or as acquired through an instrumented run on one of the emulated
// clusters (inflated compute volumes).
//
// Usage:
//
//	tracegen -workload lu -class B -np 8 [-iters 250] [-o traces] [-prefix lu_b8]
//	    [-mode perfect|minimal|fine] [-cluster bordereau|graphene] [-O3]
//	    [-fold | -tib]
//
// With -mix, tracegen instead emits a synthetic trace exercising the
// extended action vocabulary (vector collectives, wait-any/wait-some) —
// deterministic, cross-rank consistent, and independent of any workload
// model:
//
//	tracegen -mix alltoallv -np 8 -iters 4 [-bytes 65536] [-o traces] [-tib]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tireplay"
)

func main() {
	workload := flag.String("workload", "lu", "workload: lu, cg, ep, mg, bt, sp, or ft")
	classStr := flag.String("class", "B", "NPB class: S, W, A, B, C, D")
	np := flag.Int("np", 8, "number of processes (power of two)")
	iters := flag.Int("iters", 0, "iterations (0 = class default)")
	outDir := flag.String("o", "traces", "output directory")
	prefix := flag.String("prefix", "", "file prefix (default <workload>_<class><np>)")
	mode := flag.String("mode", "perfect", "acquisition mode: perfect, minimal, fine")
	clusterName := flag.String("cluster", "graphene", "emulated cluster for instrumented acquisition")
	o3 := flag.Bool("O3", false, "acquire from an -O3 build")
	fold := flag.Bool("fold", false, "write loop-folded trace files (lossless; replayer expands them)")
	tib := flag.Bool("tib", false, "write one compiled .tib binary trace instead of text files")
	mix := flag.String("mix", "", "emit a synthetic mix instead of a workload trace: one of "+fmt.Sprint(tireplay.SyntheticTraceMixes()))
	mixBytes := flag.Float64("bytes", 65536, "with -mix: base payload in bytes (the mixes scale it unevenly)")
	flag.Parse()

	if *mix != "" {
		mixIters := *iters
		if mixIters == 0 {
			mixIters = 4
		}
		perRank, err := tireplay.SyntheticMixTraces(*mix, *np, mixIters, *mixBytes)
		fatal(err)
		name := *prefix
		if name == "" {
			name = fmt.Sprintf("mix_%s%d", *mix, *np)
		}
		write(perRank, name, *outDir, *tib, *fold)
		return
	}

	class := tireplay.NPBClass((*classStr)[0])
	var w tireplay.Workload
	var err error
	switch *workload {
	case "lu":
		w, err = tireplay.NewLU(class, *np, *iters)
	case "cg":
		w, err = tireplay.NewCG(class, *np, *iters)
	case "ep":
		w, err = tireplay.NewEP(class, *np)
	case "mg":
		w, err = tireplay.NewMG(class, *np, *iters)
	case "bt":
		w, err = tireplay.NewBT(class, *np, *iters)
	case "sp":
		w, err = tireplay.NewSP(class, *np, *iters)
	case "ft":
		w, err = tireplay.NewFT(class, *np, *iters)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	fatal(err)

	var prov tireplay.TraceProvider
	switch *mode {
	case "perfect":
		prov = tireplay.PerfectTrace(w)
	case "minimal", "fine":
		var cluster *tireplay.GroundCluster
		switch *clusterName {
		case "bordereau":
			cluster = tireplay.Bordereau()
		case "graphene":
			cluster = tireplay.Graphene()
		default:
			fatal(fmt.Errorf("unknown cluster %q", *clusterName))
		}
		imode := tireplay.MinimalInstrumentation
		if *mode == "fine" {
			imode = tireplay.FineInstrumentation
		}
		compile := tireplay.CompileO0
		if *o3 {
			compile = tireplay.CompileO3
		}
		prov, err = tireplay.AcquiredTrace(w, cluster.InstrConfig(imode, compile, class))
		fatal(err)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	name := *prefix
	if name == "" {
		name = fmt.Sprintf("%s_%s%d", *workload, string(class), *np)
	}
	perRank, err := tireplay.Materialize(prov)
	fatal(err)
	write(perRank, name, *outDir, *tib, *fold)
}

// write stores a materialized trace set in the chosen layout and prints its
// volume summary.
func write(perRank [][]tireplay.Action, name, outDir string, tib, fold bool) {
	var desc string
	var err error
	switch {
	case tib:
		// A .tib is self-contained (rank count and per-rank index in the
		// header) and accepted directly by tireplay -desc.
		fatal(os.MkdirAll(outDir, 0o755))
		desc = filepath.Join(outDir, name+".tib")
		err = tireplay.WriteTIB(desc, perRank)
	case fold:
		desc, err = tireplay.WriteFoldedTraces(outDir, name, perRank)
	default:
		desc, err = tireplay.WriteTraces(outDir, name, perRank)
	}
	fatal(err)

	stats, err := tireplay.CollectTraceStats(tireplay.TracesInMemory(perRank), 65536)
	fatal(err)
	fmt.Printf("wrote %s (%d ranks)\n", desc, stats.Ranks)
	fmt.Printf("  instructions: %.4g total\n", stats.Instructions)
	fmt.Printf("  p2p: %d messages, %.4g bytes (%d eager < 64 KiB)\n",
		stats.P2PMessages, stats.P2PBytes, stats.EagerMessages)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
