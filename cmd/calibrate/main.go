// Command calibrate runs the paper's two calibration procedures against an
// emulated cluster and prints the measured instruction rates: the classic
// A-4-only rate of the first implementation and the cache-aware per-class
// rates of Section 3.4.
//
// Usage:
//
//	calibrate -cluster bordereau [-iters 5] [-classes BC]
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay"
)

func main() {
	clusterName := flag.String("cluster", "bordereau", "bordereau or graphene")
	iters := flag.Int("iters", 5, "iterations per calibration run")
	classesStr := flag.String("classes", "BC", "classes for the cache-aware procedure")
	flag.Parse()

	var cluster *tireplay.GroundCluster
	switch *clusterName {
	case "bordereau":
		cluster = tireplay.Bordereau()
	case "graphene":
		cluster = tireplay.Graphene()
	default:
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}

	fmt.Printf("calibrating on %s (nominal in-cache rate %.4g instr/s, L2 %d KiB)\n",
		cluster.Name, cluster.BaseRate, int(cluster.L2Bytes/1024))

	classic, err := tireplay.CalibrateClassic(cluster, *iters)
	fatal(err)
	fmt.Printf("classic A-4 rate (fine,-O0 counters / original compute time): %.4g instr/s (%+.1f%% vs nominal)\n",
		classic, 100*(classic/cluster.BaseRate-1))

	var classes []tireplay.NPBClass
	for _, ch := range *classesStr {
		classes = append(classes, tireplay.NPBClass(ch))
	}
	ca, err := tireplay.CalibrateCacheAware(cluster, classes, *iters)
	fatal(err)
	fmt.Printf("cache-aware rates (minimal,-O3):\n")
	fmt.Printf("  A-4 (in cache):   %.4g instr/s\n", ca.ARate)
	for _, class := range classes {
		rate := ca.ClassRates[class]
		fmt.Printf("  %s-4:              %.4g instr/s (%+.1f%% vs A-4)\n",
			string(class), rate, 100*(rate/ca.ARate-1))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}
