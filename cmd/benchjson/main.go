// Command benchjson converts `go test -bench` output read from stdin into
// a JSON document mapping each benchmark (qualified by its package, so
// names never collide across packages) to its measured metrics. CI pipes
// the benchmark run through it to produce the BENCH_ci.json artifact that
// records the performance trajectory per commit:
//
//	go test -bench . -benchtime=1x -run '^$' ./... | benchjson > BENCH_ci.json
//
// With -compare FILE it instead prints a ns/op ratio table of the current
// run against a previously produced JSON document (the committed
// BENCH_baseline.json), so regressions are visible directly in the CI log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics are the per-benchmark measurements. Zero-valued fields were not
// reported by the run (B/op and allocs/op need -benchmem or ReportAllocs).
type Metrics struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// Procs is the GOMAXPROCS suffix go test appends to the name; it is
	// stripped from the JSON key so keys stay joinable across commits even
	// when runner core counts change.
	Procs int `json:"procs,omitempty"`
}

func main() {
	compareWith := flag.String("compare", "", "baseline JSON file: print ns/op ratios instead of JSON")
	flag.Parse()

	results := make(map[string]Metrics)
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		results[name] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compareWith != "" {
		if err := compare(results, *compareWith); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	// encoding/json sorts map keys, so artifact diffs stay readable
	// across commits.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compare prints a sorted current-vs-baseline ns/op table for every
// benchmark present in both runs, and lists benchmarks only one side has.
func compare(current map[string]Metrics, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	baseline := make(map[string]Metrics)
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-70s %14s %14s %7s\n", "benchmark", "current ns/op", "baseline ns/op", "ratio")
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "%-70s %14.0f %14s %7s\n", name, cur.NsPerOp, "-", "new")
			continue
		}
		ratio := 0.0
		if base.NsPerOp > 0 {
			ratio = cur.NsPerOp / base.NsPerOp
		}
		fmt.Fprintf(w, "%-70s %14.0f %14.0f %6.2fx\n", name, cur.NsPerOp, base.NsPerOp, ratio)
	}
	var gone []string
	for name := range baseline {
		if _, ok := current[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-70s %14s %14.0f %7s\n", name, "-", baseline[name].NsPerOp, "gone")
	}
	return nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTIBDecode-8  34534  69603 ns/op  244.24 MB/s  18496 B/op  2 allocs/op
func parseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Metrics{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			name, procs = name[:i], p
		}
	}
	m := Metrics{Iterations: iters, Procs: procs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, seen = v, true
		case "B/op":
			m.BPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		case "MB/s":
			m.MBPerS = v
		}
	}
	return name, m, seen
}
