// Command benchjson converts `go test -bench` output read from stdin into
// a JSON document mapping each benchmark (qualified by its package, so
// names never collide across packages) to its measured metrics. CI pipes
// the benchmark run through it to produce the BENCH_ci.json artifact that
// records the performance trajectory per commit:
//
//	go test -bench . -benchtime=3x -count=3 -run '^$' ./... | benchjson > BENCH_ci.json
//
// When a benchmark appears several times (`-count=N`), the runs are
// reduced to their per-metric median, which is what makes a ratio gate
// usable on noisy shared runners.
//
// With -compare FILE it instead prints a ns/op ratio table of the current
// run against a previously produced JSON document (the committed
// BENCH_baseline.json). The comparison becomes a CI gate with -max-ratio
// (ns/op) and -max-alloc-ratio (allocs/op): any benchmark regressing past
// its threshold makes benchjson exit non-zero. -min-ns exempts benchmarks
// whose baseline is too fast to time reliably from the ns/op gate (their
// allocs/op, which is deterministic, stays gated). -summary FILE appends
// the table as GitHub-flavored markdown, for $GITHUB_STEP_SUMMARY.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics are the per-benchmark measurements. Zero-valued fields were not
// reported by the run (B/op and allocs/op need -benchmem or ReportAllocs).
type Metrics struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// Procs is the GOMAXPROCS suffix go test appends to the name; it is
	// stripped from the JSON key so keys stay joinable across commits even
	// when runner core counts change.
	Procs int `json:"procs,omitempty"`
}

func main() {
	compareWith := flag.String("compare", "", "baseline JSON file: print ns/op ratios instead of JSON")
	maxRatio := flag.Float64("max-ratio", 0, "with -compare: fail when current/baseline ns/op exceeds this (0 = no gate)")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 0, "with -compare: fail when current/baseline allocs/op exceeds this (0 = no gate)")
	minNs := flag.Float64("min-ns", 0, "with -compare: exempt benchmarks whose baseline ns/op is below this from the ns/op gate")
	summary := flag.String("summary", "", "with -compare: append the ratio table as markdown to this file")
	flag.Parse()

	runs := make(map[string][]Metrics)
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		runs[name] = append(runs[name], m)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	results := make(map[string]Metrics, len(runs))
	for name, rs := range runs {
		results[name] = reduceRuns(rs)
	}

	if *compareWith != "" {
		gate := gateConfig{maxRatio: *maxRatio, maxAllocRatio: *maxAllocRatio, minNs: *minNs, summaryPath: *summary}
		breaches, err := compare(results, *compareWith, gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if breaches > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past the gate\n", breaches)
			os.Exit(1)
		}
		return
	}

	// encoding/json sorts map keys, so artifact diffs stay readable
	// across commits.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// reduceRuns collapses repeated runs of one benchmark (-count=N) into a
// single Metrics value by taking the median of every metric independently.
// The median, unlike the mean, shrugs off the occasional run where a shared
// CI runner stalled — which is what makes a ratio gate non-flaky.
func reduceRuns(rs []Metrics) Metrics {
	if len(rs) == 1 {
		return rs[0]
	}
	pick := func(f func(Metrics) float64) float64 {
		vs := make([]float64, len(rs))
		for i, r := range rs {
			vs[i] = f(r)
		}
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	return Metrics{
		Iterations:  int64(pick(func(m Metrics) float64 { return float64(m.Iterations) })),
		NsPerOp:     pick(func(m Metrics) float64 { return m.NsPerOp }),
		BPerOp:      pick(func(m Metrics) float64 { return m.BPerOp }),
		AllocsPerOp: pick(func(m Metrics) float64 { return m.AllocsPerOp }),
		MBPerS:      pick(func(m Metrics) float64 { return m.MBPerS }),
		Procs:       rs[0].Procs,
	}
}

// gateConfig holds the regression thresholds for compare.
type gateConfig struct {
	maxRatio      float64 // ns/op threshold, 0 = no gate
	maxAllocRatio float64 // allocs/op threshold, 0 = no gate
	minNs         float64 // baselines faster than this skip the ns/op gate
	summaryPath   string  // markdown table destination, "" = none
}

// row is one line of the comparison table.
type row struct {
	name       string
	cur, base  Metrics
	hasBase    bool
	gone       bool
	nsRatio    float64
	allocRatio float64
	verdict    string // "ok", "FAIL", "new", "gone", or "skip" (below -min-ns)
}

// compare builds a current-vs-baseline table for every benchmark present in
// either run, prints it, optionally appends a markdown rendering to the
// summary file, and returns how many benchmarks breached a gate.
func compare(current map[string]Metrics, baselinePath string, gate gateConfig) (int, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	baseline := make(map[string]Metrics)
	if err := json.Unmarshal(data, &baseline); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []row
	breaches := 0
	for _, name := range names {
		r := row{name: name, cur: current[name]}
		if base, ok := baseline[name]; ok {
			r.hasBase = true
			r.base = base
			if base.NsPerOp > 0 {
				r.nsRatio = r.cur.NsPerOp / base.NsPerOp
			}
			if base.AllocsPerOp > 0 {
				r.allocRatio = r.cur.AllocsPerOp / base.AllocsPerOp
			}
			r.verdict = "ok"
			if base.NsPerOp < gate.minNs {
				r.verdict = "skip"
			} else if gate.maxRatio > 0 && r.nsRatio > gate.maxRatio {
				r.verdict = "FAIL"
			}
			if gate.maxAllocRatio > 0 && r.allocRatio > gate.maxAllocRatio {
				r.verdict = "FAIL"
			}
			if r.verdict == "FAIL" {
				breaches++
			}
		} else {
			r.verdict = "new"
		}
		rows = append(rows, r)
	}
	var gone []string
	for name := range baseline {
		if _, ok := current[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		rows = append(rows, row{name: name, base: baseline[name], hasBase: true, gone: true, verdict: "gone"})
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-70s %14s %14s %7s %7s %5s\n",
		"benchmark", "current ns/op", "baseline ns/op", "ns", "allocs", "gate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-70s %14s %14s %7s %7s %5s\n",
			r.name, fmtNs(r.cur.NsPerOp, r.gone), fmtNs(r.base.NsPerOp, !r.hasBase),
			fmtRatio(r.nsRatio), fmtRatio(r.allocRatio), r.verdict)
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	if gate.summaryPath != "" {
		if err := writeMarkdown(gate.summaryPath, rows, gate); err != nil {
			return 0, err
		}
	}
	return breaches, nil
}

func fmtNs(v float64, missing bool) string {
	if missing {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func fmtRatio(r float64) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", r)
}

// writeMarkdown appends the comparison as a GFM table, the shape GitHub
// renders in a job's step summary.
func writeMarkdown(path string, rows []row, gate gateConfig) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "### Benchmark ratios vs baseline\n\n")
	if gate.maxRatio > 0 || gate.maxAllocRatio > 0 {
		fmt.Fprintf(w, "Gate: ns/op ≤ %.2fx, allocs/op ≤ %.2fx (ns/op gate skipped below %.0f ns baseline).\n\n",
			gate.maxRatio, gate.maxAllocRatio, gate.minNs)
	}
	fmt.Fprintln(w, "| benchmark | current ns/op | baseline ns/op | ns ratio | allocs ratio | gate |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|:---:|")
	for _, r := range rows {
		verdict := r.verdict
		if verdict == "FAIL" {
			verdict = "❌ FAIL"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			r.name, fmtNs(r.cur.NsPerOp, r.gone), fmtNs(r.base.NsPerOp, !r.hasBase),
			fmtRatio(r.nsRatio), fmtRatio(r.allocRatio), verdict)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTIBDecode-8  34534  69603 ns/op  244.24 MB/s  18496 B/op  2 allocs/op
func parseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Metrics{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			name, procs = name[:i], p
		}
	}
	m := Metrics{Iterations: iters, Procs: procs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, seen = v, true
		case "B/op":
			m.BPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		case "MB/s":
			m.MBPerS = v
		}
	}
	return name, m, seen
}
