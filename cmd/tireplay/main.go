// Command tireplay replays a time-independent trace on a simulated platform
// and prints the predicted execution time — the equivalent of the paper's
//
//	smpirun -np 8 -hostfile hostfile -platform platform.xml \
//	    ./smpi_replay trace_description
//
// Usage:
//
//	tireplay -desc traces/lu_b8.desc -np 8 -platform platform.json \
//	    [-backend smpi|msg] [-speed 2.5e9] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay"
)

func main() {
	desc := flag.String("desc", "", "trace description file (one trace file per rank, or a single merged trace)")
	np := flag.Int("np", 0, "number of ranks (required with a merged trace; otherwise inferred)")
	platPath := flag.String("platform", "", "platform description (JSON)")
	backend := flag.String("backend", "smpi", "replay backend: smpi (accurate) or msg (legacy prototype)")
	speed := flag.Float64("speed", 0, "override host compute rate (instructions/s), e.g. a calibrated value")
	validate := flag.Bool("validate", false, "cross-validate the trace before replaying")
	verbose := flag.Bool("v", false, "print engine statistics")
	flag.Parse()

	if *desc == "" || *platPath == "" {
		fmt.Fprintln(os.Stderr, "tireplay: -desc and -platform are required")
		flag.Usage()
		os.Exit(2)
	}

	plat, model, err := tireplay.LoadPlatform(*platPath)
	fatal(err)
	n := *np
	if n == 0 {
		n = plat.Size()
	}
	if *speed > 0 {
		plat.SetSpeed(*speed)
	}

	if *validate {
		prov, err := tireplay.LoadTraces(*desc, n)
		fatal(err)
		fatal(tireplay.ValidateTraces(prov))
		fmt.Println("trace validated: sends/receives matched, collectives balanced")
	}

	prov, err := tireplay.LoadTraces(*desc, n)
	fatal(err)

	cfg := tireplay.ReplayConfig{Network: model}
	switch *backend {
	case "smpi":
		cfg.Backend = tireplay.SMPI
	case "msg":
		cfg.Backend = tireplay.MSG
		cfg.Network = nil // the prototype had no piece-wise factors
		cfg.MSG = tireplay.MSGConfig{RefLatency: 6.5e-5, RefBandwidth: 1.25e8}
	default:
		fatal(fmt.Errorf("unknown backend %q (want smpi or msg)", *backend))
	}

	res, err := tireplay.Replay(prov, plat, cfg)
	fatal(err)

	fmt.Printf("simulated time: %.6f s\n", res.SimulatedTime)
	fmt.Printf("replayed %d actions in %v (%.0f actions/s)\n",
		res.Actions, res.Wall, res.ActionsPerSecond())
	if *verbose {
		fmt.Printf("engine: %+v\n", res.Engine)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tireplay:", err)
		os.Exit(1)
	}
}
