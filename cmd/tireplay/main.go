// Command tireplay replays time-independent traces on simulated platforms
// and prints the predicted execution times — the equivalent of the paper's
//
//	smpirun -np 8 -hostfile hostfile -platform platform.xml \
//	    ./smpi_replay trace_description
//
// Single-scenario usage:
//
//	tireplay -desc traces/lu_b8.desc -np 8 -platform platform.json \
//	    [-backend smpi|msg] [-speed 2.5e9] [-validate]
//
// The platform JSON selects one of the supported topologies via its
// "topology" field: the paper's cluster shapes ("flat", "hierarchical",
// "crossbar") or the structured interconnects of the topology zoo
// ("fattree" with radix/levels, "dragonfly" with groups/routers_per_group/
// hosts_per_router/routing, "torus" with torus_dims) — all with real
// deterministic routing. See the README's "Topology zoo" section.
//
// Batch usage — a JSON array of scenario descriptions replayed on a worker
// pool (each simulation is single-threaded; scenarios run concurrently):
//
//	tireplay -scenarios batch.json [-workers 4] [-v]
//
// Sweep usage — a declarative parameter grid (base scenario + axes)
// expanded, streamed through the pool, and persisted to a result store so
// an interrupted or edited sweep resumes instead of re-running:
//
//	tireplay -sweep grid.json [-out results.jsonl] [-csv results.csv] \
//	    [-store results.store] [-resume] [-workers 4] [-v]
//
// Compile-only usage — build the binary trace cache (a sibling .tib file)
// without replaying, so later replays and CI runs start warm:
//
//	tireplay -compile -desc traces/lu_b8.desc [-np 8]
//
// Foreign-trace usage — replay a dump acquired by another toolchain (an SST
// DUMPI ASCII dump or a TAU profile folder), either directly or ingested
// once into the binary .tib form:
//
//	tireplay -import auto -desc dumps/run.dumpi -platform platform.json
//	tireplay -import dumpi -compile -desc dumps/run.dumpi
//
// Service usage — a long-lived sweep server sharing one result store
// across many clients (identical points replay exactly once), with
// work-stealing worker processes draining the queue:
//
//	tireplay serve -addr :9411 -store results.store [-workers N] [-lease-ttl 30s]
//	tireplay work -server http://host:9411 [-workers N] [-name w1]
//	tireplay -sweep grid.json -server http://host:9411 [-out results.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	mrand "math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"tireplay"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "work":
			runWork(os.Args[2:])
			return
		}
	}
	runMain()
}

func runMain() {
	desc := flag.String("desc", "", "trace description file (one trace file per rank, or a single merged trace)")
	np := flag.Int("np", 0, "number of ranks (required with a merged trace; otherwise inferred)")
	platPath := flag.String("platform", "", "platform description (JSON)")
	backend := flag.String("backend", "smpi", "replay backend: one of "+fmt.Sprint(tireplay.Backends()))
	speed := flag.Float64("speed", 0, "override host compute rate (instructions/s), e.g. a calibrated value")
	validate := flag.Bool("validate", false, "cross-validate the trace before replaying")
	scenarios := flag.String("scenarios", "", "JSON scenario batch file; replaces -desc/-platform")
	sweepSpec := flag.String("sweep", "", "JSON sweep spec (base scenario + parameter axes); replaces -desc/-platform")
	out := flag.String("out", "", "stream sweep results to this JSONL file as they complete")
	csvOut := flag.String("csv", "", "stream sweep results to this CSV file as they complete")
	storeDir := flag.String("store", "", "sweep result-store directory (default: the spec's, or <spec>.store with -resume)")
	resume := flag.Bool("resume", false, "require the result store and skip already-completed sweep points")
	workers := flag.Int("workers", 0, "batch worker-pool size (0 = all CPUs)")
	verbose := flag.Bool("v", false, "print engine statistics / batch progress")
	compile := flag.Bool("compile", false, "compile -desc into a sibling .tib binary trace cache and exit")
	cache := flag.String("trace-cache", "auto", "binary trace cache mode: auto, on, or off")
	importFmt := flag.String("import", "", "treat -desc as a foreign trace in this format: one of "+fmt.Sprint(tireplay.TraceImporters())+", or auto to sniff")
	importRate := flag.Float64("import-rate", 0, "with -import: CPU-seconds-to-instructions rate when the dump has no hardware counter (0 = 1e9)")
	server := flag.String("server", "", "with -sweep: submit to this sweep server (tireplay serve) instead of running locally")
	flag.Parse()

	if *compile {
		if *desc == "" {
			fmt.Fprintln(os.Stderr, "tireplay: -compile requires -desc")
			os.Exit(2)
		}
		if *importFmt != "" {
			// Foreign-trace ingestion: pay the DUMPI/TAU parse once, replay
			// from the binary form ever after.
			tibPath := *desc + ".tib"
			ranks, err := tireplay.ImportCompileTraces(*importFmt, *desc, tibPath,
				tireplay.TraceImportOptions{InstructionRate: *importRate})
			fatal(err)
			fmt.Printf("imported %d ranks, compiled %s\n", ranks, tibPath)
			return
		}
		if *np == 0 {
			// A single-entry description is the merged layout: without a
			// rank count it would silently compile as one rank.
			entries, err := tireplay.TraceDescriptionEntries(*desc)
			fatal(err)
			if entries == 1 {
				fmt.Fprintln(os.Stderr, "tireplay: -compile on a merged (single-entry) trace description requires -np")
				os.Exit(2)
			}
		}
		tibPath, rebuilt, err := tireplay.CompileTraces(*desc, *np)
		fatal(err)
		if rebuilt {
			fmt.Printf("compiled %s\n", tibPath)
		} else {
			fmt.Printf("cache up to date: %s\n", tibPath)
		}
		return
	}

	if *sweepSpec != "" {
		if *server != "" {
			runRemoteSweep(*sweepSpec, *server, *out, *csvOut, *verbose)
			return
		}
		runSweep(*sweepSpec, *out, *csvOut, *storeDir, *resume, *workers, *verbose)
		return
	}

	if *scenarios != "" {
		runBatch(*scenarios, *workers, *verbose)
		return
	}

	if *desc == "" || *platPath == "" {
		fmt.Fprintln(os.Stderr, "tireplay: -desc and -platform are required (or use -scenarios)")
		flag.Usage()
		os.Exit(2)
	}

	s := &tireplay.Scenario{
		PlatformFile:  *platPath,
		TraceDesc:     *desc,
		Ranks:         *np,
		Backend:       *backend,
		HostSpeed:     *speed,
		ValidateTrace: *validate,
		TraceCache:    *cache,
		TraceFormat:   *importFmt,
		ImportRate:    *importRate,
	}
	if *backend == tireplay.MSG {
		// The prototype's crude hard-coded network reference figures, and
		// no piece-wise factors even if the platform declares them.
		s.MSG = tireplay.MSGPrototypeConfig()
		s.NoNetworkFactors = true
	}

	res, err := s.Run(context.Background())
	fatal(err)

	if *validate {
		fmt.Println("trace validated: sends/receives matched, collectives balanced")
	}
	fmt.Printf("simulated time: %.6f s\n", res.SimulatedTime)
	fmt.Printf("replayed %d actions in %v (%.0f actions/s)\n",
		res.Actions, res.Wall, res.ActionsPerSecond())
	if *verbose {
		fmt.Printf("engine: %+v\n", res.Engine)
	}
}

func runSweep(specPath, out, csvOut, storeDir string, resume bool, workers int, verbose bool) {
	sw, err := tireplay.LoadSweep(specPath)
	fatal(err)
	// Expansion happens inside RunSweep; the count is only for progress
	// lines, so pay for a second expansion only when asked to narrate.
	total := 0
	if verbose {
		points, err := sw.Expand()
		fatal(err)
		total = len(points)
	}

	opts := []tireplay.SweepOption{tireplay.WithSweepWorkers(workers)}
	if storeDir == "" && resume && sw.Store == "" {
		storeDir = specPath + ".store"
	}
	if storeDir != "" {
		opts = append(opts, tireplay.WithStore(storeDir))
	}
	if resume {
		opts = append(opts, tireplay.WithResume("on"))
	}
	if out != "" {
		f, err := os.Create(out)
		fatal(err)
		defer f.Close()
		opts = append(opts, tireplay.WithSink(tireplay.NewJSONLSink(f)))
	}
	if csvOut != "" {
		axes := make([]string, len(sw.Axes))
		for i := range sw.Axes {
			axes[i] = sw.Axes[i].Name
		}
		f, err := os.Create(csvOut)
		fatal(err)
		defer f.Close()
		opts = append(opts, tireplay.WithSink(tireplay.NewCSVSink(f, axes...)))
	}

	if verbose {
		fmt.Fprintf(os.Stderr, "sweep %s: %d points\n", sw.Name, total)
	}
	done, failed, cached := 0, 0, 0
	for r, err := range tireplay.RunSweep(context.Background(), sw, opts...) {
		fatal(err)
		done++
		name := r.Point.Scenario.Name
		if r.Err != nil {
			failed++
			fmt.Printf("%-24s ERROR: %v\n", name, r.Err)
			continue
		}
		tag := ""
		if r.Cached {
			cached++
			tag = "   (stored)"
		}
		fmt.Printf("%-24s simulated %10.6f s   (%d actions in %v)%s\n",
			name, r.Replay.SimulatedTime, r.Replay.Actions, r.Replay.Wall, tag)
		if verbose {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, name)
		}
	}
	if verbose && cached > 0 {
		fmt.Fprintf(os.Stderr, "tireplay: %d of %d points served from the result store\n", cached, done)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tireplay: %d of %d sweep points failed\n", failed, done)
		os.Exit(1)
	}
}

func runBatch(path string, workers int, verbose bool) {
	batch, err := tireplay.LoadScenarios(path)
	fatal(err)

	var opts []tireplay.RunnerOption
	if workers > 0 {
		opts = append(opts, tireplay.WithWorkers(workers))
	}
	if verbose {
		opts = append(opts, tireplay.WithObserver(func(ev tireplay.RunnerEvent) {
			if ev.Kind == tireplay.ScenarioFinished {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", ev.Done, ev.Total, name(ev.Result))
			}
		}))
	}

	results, err := tireplay.RunScenarios(context.Background(), batch, opts...)
	fatal(err)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("%-24s ERROR: %v\n", name(r), r.Err)
			continue
		}
		fmt.Printf("%-24s simulated %10.6f s   (%d actions in %v)\n",
			name(r), r.Replay.SimulatedTime, r.Replay.Actions, r.Replay.Wall)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tireplay: %d of %d scenarios failed\n", failed, len(results))
		os.Exit(1)
	}
}

func name(r tireplay.ScenarioResult) string {
	if r.Scenario.Name != "" {
		return r.Scenario.Name
	}
	return fmt.Sprintf("scenario %d", r.Index)
}

// runServe starts the sweep service: HTTP submit/stream endpoints, a
// shared result store, an embedded worker pool, and the lease protocol
// external `tireplay work` processes drain the queue through.
func runServe(args []string) {
	fs := flag.NewFlagSet("tireplay serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9411", "listen address")
	storeDir := fs.String("store", "", "shared result-store directory (required)")
	workers := fs.Int("workers", 0, "embedded worker-pool size (0 = all CPUs, negative = external workers only)")
	ttl := fs.Duration("lease-ttl", 30*time.Second, "work lease time-to-live (heartbeat interval is derived from it)")
	maxAttempts := fs.Int("max-attempts", 0, "replay attempts per point before it is quarantined as a permanent failure (0 = default 3)")
	drain := fs.Duration("drain", 0, "grace period on SIGTERM for in-flight leases to post results (0 = default 10s)")
	verbose := fs.Bool("v", false, "log submissions, leases, and expirations")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "tireplay serve: -store is required")
		fs.Usage()
		os.Exit(2)
	}

	cfg := tireplay.ServeConfig{Store: *storeDir, Workers: *workers, LeaseTTL: *ttl,
		MaxAttempts: *maxAttempts, Drain: *drain}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "tireplay: serving on http://%s (store %s)\n", *addr, *storeDir)
	fatal(tireplay.Serve(ctx, *addr, cfg))
}

// runWork runs lease-replay-post worker loops against a sweep server
// until interrupted. Started before its server, or across a server
// restart, it just keeps polling.
func runWork(args []string) {
	fs := flag.NewFlagSet("tireplay work", flag.ExitOnError)
	server := fs.String("server", "", "sweep server base URL, e.g. http://host:9411 (required)")
	workers := fs.Int("workers", 1, "concurrent replay loops in this process")
	name := fs.String("name", "", "worker name reported to the server (default pid)")
	poll := fs.Duration("poll", 2*time.Second, "lease long-poll window and transport-error backoff")
	verbose := fs.Bool("v", false, "log leases and retries")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *server == "" {
		fmt.Fprintln(os.Stderr, "tireplay work: -server is required")
		fs.Usage()
		os.Exit(2)
	}
	if *name == "" {
		*name = fmt.Sprintf("pid%d", os.Getpid())
	}
	if *workers < 1 {
		*workers = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		opts := tireplay.WorkerOptions{Name: fmt.Sprintf("%s/%d", *name, i), Poll: *poll}
		if *verbose {
			opts.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tireplay.Work(ctx, *server, opts); err != nil {
				fmt.Fprintln(os.Stderr, "tireplay work:", err)
			}
		}()
	}
	wg.Wait()
}

// runRemoteSweep submits a sweep spec to a server and streams the
// results back, printing and sinking them exactly like a local run.
func runRemoteSweep(specPath, server, out, csvOut string, verbose bool) {
	sw, err := tireplay.LoadSweep(specPath)
	fatal(err)
	ctx := context.Background()
	fatal(waitForServer(ctx, server, 30*time.Second))

	sub, err := tireplay.SubmitSweep(ctx, server, sw)
	fatal(err)
	if verbose {
		fmt.Fprintf(os.Stderr, "sweep %s: %d points (%d cached, %d merged, %d pending) as %s\n",
			sw.Name, sub.Points, sub.Cached, sub.Merged, sub.Pending, sub.ID)
	}

	var sinks []tireplay.SweepSink
	if out != "" {
		f, err := os.Create(out)
		fatal(err)
		defer f.Close()
		sinks = append(sinks, tireplay.NewJSONLSink(f))
	}
	if csvOut != "" {
		axes := make([]string, len(sw.Axes))
		for i := range sw.Axes {
			axes[i] = sw.Axes[i].Name
		}
		f, err := os.Create(csvOut)
		fatal(err)
		defer f.Close()
		sinks = append(sinks, tireplay.NewCSVSink(f, axes...))
	}

	done, failed, cached := 0, 0, 0
	for rec, err := range tireplay.StreamResults(ctx, server, sub.ID) {
		fatal(err)
		for _, s := range sinks {
			fatal(s.Write(rec))
		}
		done++
		if rec.Err != "" {
			failed++
			fmt.Printf("%-24s ERROR: %s\n", rec.Name, rec.Err)
			continue
		}
		tag := ""
		if rec.Cached {
			cached++
			tag = "   (stored)"
		}
		fmt.Printf("%-24s simulated %10.6f s   (%d actions in %v)%s\n",
			rec.Name, rec.Replay.SimulatedTime, rec.Replay.Actions, rec.Replay.Wall, tag)
		if verbose {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, sub.Points, rec.Name)
		}
	}
	if verbose && cached > 0 {
		fmt.Fprintf(os.Stderr, "tireplay: %d of %d points served from the server's store\n", cached, done)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tireplay: %d of %d sweep points failed\n", failed, done)
		os.Exit(1)
	}
}

// waitForServer polls the server's health endpoint so a client (or CI
// smoke script) started alongside the server does not race its bind.
// Probes back off exponentially with full jitter under an overall
// deadline, so a fleet of workers pointed at a booting (or restarting)
// server neither hammers it nor stampedes in lockstep when it appears.
func waitForServer(ctx context.Context, server string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	wait := 50 * time.Millisecond
	const maxWait = 2 * time.Second
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, server+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz returned %s", resp.Status)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep server %s unreachable after %v: %v", server, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(mrand.Int64N(int64(wait))) + 1):
		}
		if wait *= 2; wait > maxWait {
			wait = maxWait
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tireplay:", err)
		os.Exit(1)
	}
}
