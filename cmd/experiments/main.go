// Command experiments reproduces the paper's evaluation: Tables 1-2 and
// Figures 1-7. Each experiment emulates the acquisition runs on the
// ground-truth cluster models, calibrates the simulator, replays the
// acquired traces, and prints rows comparable to the paper's.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|sweep] \
//	    [-iters N] [-full] [-workers N]
//
// The sweep experiment replays the whole {LU, CG} x classes x procs x
// backend grid as one declarative sweep spec (base scenario + axes)
// streamed through the worker pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tireplay/internal/experiments"
	"tireplay/internal/ground"
)

func main() {
	runFlag := flag.String("run", "all", "experiment to run: all, table1, table2, fig1..fig7, ablation, memcpy, decoupling, efficiency, sweep")
	iters := flag.Int("iters", 25, "SSOR iterations per emulated run (reduced; times are scaled to the class itmax)")
	full := flag.Bool("full", false, "use the full NPB iteration counts (slow)")
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = all CPUs)")
	flag.Parse()

	opt := experiments.Options{Iterations: *iters}
	if *full {
		opt.Iterations = 250
	}

	if err := run(*runFlag, opt, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which string, opt experiments.Options, workers int) error {
	bordereau := ground.Bordereau()
	graphene := ground.Graphene()
	classes := experiments.StudyClasses
	all := which == "all"

	if all || which == "table1" {
		rows, err := experiments.TableOverhead(bordereau, classes, experiments.BordereauProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderOverhead(os.Stdout, "Table 1: instrumentation overhead on bordereau (old: fine,-O0 / new: minimal,-O3)", rows)
		fmt.Println()
	}
	if all || which == "table2" {
		rows, err := experiments.TableOverhead(graphene, classes, experiments.GrapheneProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderOverhead(os.Stdout, "Table 2: instrumentation overhead on graphene (old: fine,-O0 / new: minimal,-O3)", rows)
		fmt.Println()
	}
	if all || which == "fig1" {
		rows, err := experiments.FigureDiscrepancy(bordereau, experiments.FineVsCoarse, classes, experiments.BordereauProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderDiscrepancy(os.Stdout, "Figure 1: instruction-count difference, fine vs coarse (-O0), bordereau", rows)
		fmt.Println()
	}
	if all || which == "fig2" {
		rows, err := experiments.FigureDiscrepancy(graphene, experiments.FineVsCoarse, classes, experiments.GrapheneProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderDiscrepancy(os.Stdout, "Figure 2: instruction-count difference, fine vs coarse (-O0), graphene", rows)
		fmt.Println()
	}
	if all || which == "fig3" {
		rows, err := experiments.FigureAccuracy(bordereau, experiments.OldPipeline, classes, experiments.BordereauProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderAccuracy(os.Stdout, "Figure 3: accuracy of the FIRST implementation (fine,-O0,A-4,MSG), bordereau", rows)
		fmt.Println()
	}
	if all || which == "fig4" {
		rows, err := experiments.FigureDiscrepancy(bordereau, experiments.MinimalVsCoarse, classes, experiments.BordereauProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderDiscrepancy(os.Stdout, "Figure 4: instruction-count difference, minimal vs coarse (-O3), bordereau", rows)
		fmt.Println()
	}
	if all || which == "fig5" {
		rows, err := experiments.FigureDiscrepancy(graphene, experiments.MinimalVsCoarse, classes, experiments.GrapheneProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderDiscrepancy(os.Stdout, "Figure 5: instruction-count difference, minimal vs coarse (-O3), graphene", rows)
		fmt.Println()
	}
	if all || which == "fig6" {
		rows, err := experiments.FigureAccuracy(bordereau, experiments.NewPipeline, classes, experiments.BordereauProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderAccuracy(os.Stdout, "Figure 6: accuracy of the NEW implementation (minimal,-O3,cache-aware,SMPI), bordereau", rows)
		fmt.Println()
	}
	if all || which == "fig7" {
		rows, err := experiments.FigureAccuracy(graphene, experiments.NewPipeline, classes, experiments.GrapheneProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderAccuracy(os.Stdout, "Figure 7: accuracy of the NEW implementation (minimal,-O3,cache-aware,SMPI), graphene", rows)
		fmt.Println()
	}
	if all || which == "ablation" {
		rows, err := experiments.Ablation(bordereau, experiments.StudyClasses[0], []int{8, 64}, opt)
		if err != nil {
			return err
		}
		experiments.RenderAblation(os.Stdout, "Ablation (extension): contribution of each fix, LU class B on bordereau", rows)
		fmt.Println()
	}
	if all || which == "memcpy" {
		rows, err := experiments.FutureWorkMemcpy(graphene, classes, []int{8, 64, 128}, opt)
		if err != nil {
			return err
		}
		experiments.RenderAblation(os.Stdout, "Future work (Section 6): modelling the eager memcpy in the replay, graphene", rows)
		fmt.Println()
	}
	if all || which == "decoupling" {
		rows, err := experiments.Decoupling(graphene,
			[]*ground.Cluster{ground.Graphene(), ground.Bordereau()},
			experiments.StudyClasses[0], 32, opt)
		if err != nil {
			return err
		}
		experiments.RenderDecoupling(os.Stdout,
			"Decoupling (extension): B-32 trace acquired on different machines, replayed for graphene", rows)
		fmt.Println()
	}
	if all || which == "efficiency" {
		rows, err := experiments.Efficiency(graphene, experiments.StudyClasses[0], experiments.GrapheneProcs, opt)
		if err != nil {
			return err
		}
		experiments.RenderEfficiency(os.Stdout, "Efficiency (extension): replay cost per backend and scale, graphene platform", rows)
		fmt.Println()
	}
	if all || which == "sweep" {
		rows, err := experiments.Sweep(context.Background(), graphene,
			experiments.StudyClasses, experiments.GrapheneProcs, workers, opt,
			func(done, total int, name string) {
				fmt.Fprintf(os.Stderr, "sweep [%d/%d] %s\n", done, total, name)
			})
		if err != nil {
			return err
		}
		experiments.RenderSweep(os.Stdout,
			"Sweep (extension): {LU,CG} x classes x procs x backends batch on the worker pool, graphene platform", rows)
		fmt.Println()
	}
	if !all {
		switch which {
		case "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"ablation", "memcpy", "decoupling", "efficiency", "sweep":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}
