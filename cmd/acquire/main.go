// Command acquire emulates trace-acquisition runs on the ground-truth
// clusters and reports what the paper's Tables 1/2 and Figures 1/2/4/5
// measure: the run-time overhead of instrumentation and the inflation of
// the hardware instruction counters.
//
// Usage:
//
//	acquire -cluster bordereau -class B -np 8 [-iters 25] [-O3]
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay"
	"tireplay/internal/instrument"
	"tireplay/internal/stats"
)

func main() {
	clusterName := flag.String("cluster", "bordereau", "bordereau or graphene")
	classStr := flag.String("class", "B", "NPB class")
	np := flag.Int("np", 8, "processes")
	iters := flag.Int("iters", 25, "SSOR iterations")
	o3 := flag.Bool("O3", false, "use the -O3 build")
	flag.Parse()

	var cluster *tireplay.GroundCluster
	switch *clusterName {
	case "bordereau":
		cluster = tireplay.Bordereau()
	case "graphene":
		cluster = tireplay.Graphene()
	default:
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	class := tireplay.NPBClass((*classStr)[0])
	compile := tireplay.CompileO0
	if *o3 {
		compile = tireplay.CompileO3
	}

	fmt.Printf("emulating LU %s-%d on %s (%d iterations, %v)\n",
		string(class), *np, cluster.Name, *iters, compile)

	times := map[tireplay.InstrumentationMode]float64{}
	for _, mode := range []tireplay.InstrumentationMode{
		tireplay.Uninstrumented, tireplay.CoarseInstrumentation,
		tireplay.MinimalInstrumentation, tireplay.FineInstrumentation,
	} {
		lu, err := tireplay.NewLU(class, *np, *iters)
		fatal(err)
		run, err := cluster.Run(lu, cluster.InstrConfig(mode, compile, class))
		fatal(err)
		times[mode] = run.Time
		fmt.Printf("  %-8s %10.3f s", mode, run.Time)
		if mode != tireplay.Uninstrumented {
			fmt.Printf("  (overhead %+.1f%%)", 100*(run.Time/times[tireplay.Uninstrumented]-1))
		}
		fmt.Println()
	}

	// Counter discrepancies vs the coarse reference.
	lu, err := tireplay.NewLU(class, *np, *iters)
	fatal(err)
	ref, err := instrument.Counters(lu, cluster.InstrConfig(tireplay.CoarseInstrumentation, compile, class))
	fatal(err)
	for _, mode := range []tireplay.InstrumentationMode{
		tireplay.MinimalInstrumentation, tireplay.FineInstrumentation,
	} {
		lu, err := tireplay.NewLU(class, *np, *iters)
		fatal(err)
		counters, err := instrument.Counters(lu, cluster.InstrConfig(mode, compile, class))
		fatal(err)
		diffs := make([]float64, len(counters))
		for i := range counters {
			diffs[i] = stats.RelErr(counters[i], ref[i])
		}
		sum, err := stats.Summarize(diffs)
		fatal(err)
		fmt.Printf("counter inflation, %s vs coarse: %s %%\n", mode, sum)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "acquire:", err)
		os.Exit(1)
	}
}
