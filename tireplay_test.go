package tireplay_test

import (
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tireplay"
)

func TestFacadeEndToEnd(t *testing.T) {
	lu, err := tireplay.NewLU(tireplay.ClassS, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	perRank, err := tireplay.Materialize(tireplay.PerfectTrace(lu))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	desc, err := tireplay.WriteTraces(dir, "lu_s4", perRank)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(desc) != dir {
		t.Fatalf("desc path = %q", desc)
	}
	prov, err := tireplay.LoadTraces(desc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tireplay.ValidateTraces(prov); err != nil {
		t.Fatal(err)
	}
	plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
		Name: "t", Hosts: 4, Speed: 2e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	prov, err = tireplay.LoadTraces(desc, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tireplay.Replay(prov, plat, tireplay.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 || res.Actions == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFacadeAcquiredVsPerfect(t *testing.T) {
	mk := func() tireplay.Workload {
		lu, err := tireplay.NewLU(tireplay.ClassS, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		return lu
	}
	cluster := tireplay.Graphene()
	acq, err := tireplay.AcquiredTrace(mk(), cluster.InstrConfig(
		tireplay.FineInstrumentation, tireplay.CompileO0, tireplay.ClassS))
	if err != nil {
		t.Fatal(err)
	}
	sAcq, err := tireplay.CollectTraceStats(acq, 65536)
	if err != nil {
		t.Fatal(err)
	}
	sPerf, err := tireplay.CollectTraceStats(tireplay.PerfectTrace(mk()), 65536)
	if err != nil {
		t.Fatal(err)
	}
	if sAcq.Instructions <= sPerf.Instructions {
		t.Fatalf("fine acquisition %.4g not inflated vs perfect %.4g",
			sAcq.Instructions, sPerf.Instructions)
	}
	if _, err := tireplay.AcquiredTrace(mk(), cluster.InstrConfig(
		tireplay.Uninstrumented, tireplay.CompileO0, tireplay.ClassS)); err == nil {
		t.Fatal("expected error for uninstrumented acquisition")
	}
}

func TestFacadeBackendsDiffer(t *testing.T) {
	run := func(cfg tireplay.ReplayConfig) float64 {
		lu, err := tireplay.NewLU(tireplay.ClassS, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
			Name: "t", Hosts: 8, Speed: 2e9,
			LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
			BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedTime
	}
	smpi := run(tireplay.ReplayConfig{Backend: tireplay.SMPI})
	msg := run(tireplay.ReplayConfig{
		Backend: tireplay.MSG,
		MSG:     tireplay.MSGPrototypeConfig(),
	})
	if msg <= smpi {
		t.Fatalf("MSG backend %v not slower than SMPI %v on a wavefront workload", msg, smpi)
	}
}

func TestFacadeCalibration(t *testing.T) {
	cluster := tireplay.Bordereau()
	classic, err := tireplay.CalibrateClassic(cluster, 3)
	if err != nil {
		t.Fatal(err)
	}
	if classic <= 0 {
		t.Fatal("non-positive classic rate")
	}
	ca, err := tireplay.CalibrateCacheAware(cluster, []tireplay.NPBClass{tireplay.ClassB}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ca.ARate <= 0 || ca.ClassRates[tireplay.ClassB] >= ca.ARate {
		t.Fatalf("cache-aware rates = %+v", ca)
	}
}

// TestFacadeSweepService drives the service surface end to end through
// the facade alone: server over a shared store, submit, in-process
// worker, streamed records matching a local CollectSweep bit for bit.
func TestFacadeSweepService(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sw := &tireplay.Sweep{
		Name: "facade-serve",
		Base: tireplay.Scenario{
			Platform: &tireplay.PlatformSpec{Name: "t", Topology: "flat", Hosts: 2,
				Speed: 1e9, LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
				BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6},
			Workload: &tireplay.WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 2, Iterations: 1},
		},
		Axes: []tireplay.SweepAxis{{Name: "iters", Path: "workload.iterations", Values: []any{1, 2}}},
	}
	local, err := tireplay.CollectSweep(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := tireplay.NewSweepServer(tireplay.ServeConfig{Store: t.TempDir(), Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tireplay.Work(ctx, ts.URL, tireplay.WorkerOptions{Poll: 50 * time.Millisecond})
	}()
	defer wg.Wait()
	defer cancel()

	sub, err := tireplay.SubmitSweep(ctx, ts.URL, sw)
	if err != nil {
		t.Fatal(err)
	}
	byFP := make(map[string]float64)
	for _, r := range local {
		byFP[r.Point.Fingerprint] = r.Replay.SimulatedTime
	}
	got := 0
	for rec, err := range tireplay.StreamResults(ctx, ts.URL, sub.ID) {
		if err != nil {
			t.Fatal(err)
		}
		if rec.Err != "" {
			t.Fatalf("point %s failed: %s", rec.Name, rec.Err)
		}
		want, ok := byFP[rec.Fingerprint]
		if !ok || rec.Replay.SimulatedTime != want {
			t.Fatalf("point %s: served %v, local %v (known %v)", rec.Name, rec.Replay.SimulatedTime, want, ok)
		}
		got++
	}
	if got != len(local) {
		t.Fatalf("streamed %d records, want %d", got, len(local))
	}
}

func TestFacadePlatformSpecRoundTrip(t *testing.T) {
	plat, model, err := tireplay.HierCluster(tireplay.HierClusterSpec{
		Name: "h", Cabinets: 2, HostsPerCabinet: 4, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-5,
		CabinetBandwidth: 1e10, CabinetLatency: 1e-6,
		BackboneBandwidth: 1e10, BackboneLatency: 1e-6,
	}, tireplay.NetworkSegment{MaxBytes: math.MaxFloat64, LatFactor: 1, BwFactor: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if plat.Size() != 8 || model == nil {
		t.Fatalf("platform = %d hosts, model = %v", plat.Size(), model)
	}
}
